// Tests for the unified telemetry layer (tseig::obs): critical-path
// analysis on hand-built DAGs, JSON escaping and parsing round trips, and a
// full recorded syev run pushed through both exporters and parsed back --
// the trace must be valid JSON with monotone spans covering every phase,
// and the metrics totals must agree with the solver's own PhaseBreakdown.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "runtime/task_graph.hpp"
#include "solver/syev.hpp"
#include "test_support.hpp"

namespace tseig {
namespace {

obs::GraphTask node(const char* label, double dur, std::vector<idx> succ) {
  obs::GraphTask t;
  t.label = label;
  t.duration_seconds = dur;
  t.successors = std::move(succ);
  return t;
}

TEST(ObsCriticalPath, DiamondDag) {
  // A -> {B, C} -> D: the longest path goes through C (1 + 3 + 1).
  std::vector<obs::GraphTask> dag;
  dag.push_back(node("A", 1.0, {1, 2}));
  dag.push_back(node("B", 2.0, {3}));
  dag.push_back(node("C", 3.0, {3}));
  dag.push_back(node("D", 1.0, {}));
  EXPECT_NEAR(obs::critical_path_seconds(dag), 5.0, 1e-12);
}

TEST(ObsCriticalPath, EmptyChainAndIndependentTasks) {
  EXPECT_EQ(obs::critical_path_seconds({}), 0.0);

  std::vector<obs::GraphTask> chain;
  chain.push_back(node("a", 1.0, {1}));
  chain.push_back(node("b", 2.0, {2}));
  chain.push_back(node("c", 4.0, {}));
  EXPECT_NEAR(obs::critical_path_seconds(chain), 7.0, 1e-12);

  // No edges: the critical path is the single longest task.
  std::vector<obs::GraphTask> indep;
  indep.push_back(node("a", 1.0, {}));
  indep.push_back(node("b", 2.5, {}));
  indep.push_back(node("c", 0.5, {}));
  EXPECT_NEAR(obs::critical_path_seconds(indep), 2.5, 1e-12);
}

TEST(ObsJson, EscapeRoundTrip) {
  const std::string hostile = "a\"b\\c\nd\te\x01f/";
  const obs::JsonValue v = obs::json_parse(obs::json_string(hostile));
  EXPECT_EQ(v.as_string(), hostile);
}

TEST(ObsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW(obs::json_parse("{\"a\":1} trailing"), invalid_argument);
  EXPECT_THROW(obs::json_parse("{\"a\":"), invalid_argument);
  EXPECT_THROW(obs::json_parse(""), invalid_argument);
}

TEST(Obs, DisabledRecordingIsANoOp) {
  obs::reset();
  ASSERT_FALSE(obs::enabled());
  { obs::Span span("ignored"); }
  obs::record_span("ignored", 0.0, 1.0);
  obs::record_counter("ignored", 1.0);
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.graphs.empty());
}

TEST(Obs, SyevRoundTripThroughExporters) {
  const idx n = 192;
  Rng rng(7);
  const Matrix a = testing::random_symmetric(n, rng);
  Matrix work = a;

  obs::reset();
  obs::set_enabled(true);
  solver::SyevOptions o;
  o.algo = solver::method::two_stage;
  o.solver = solver::eig_solver::dc;
  o.job = solver::jobz::vectors;
  o.nb = 32;
  o.num_workers = 4;
  const solver::SyevResult res = solver::syev(n, work.data(), work.ld(), o);
  const obs::Snapshot snap = obs::snapshot();
  obs::set_enabled(false);

  ASSERT_FALSE(snap.spans.empty());
  EXPECT_EQ(snap.dropped_spans, 0u);
  // Snapshot spans are merged across lanes sorted by start time, and every
  // span is monotone.
  for (size_t i = 0; i < snap.spans.size(); ++i) {
    EXPECT_GE(snap.spans[i].end_seconds, snap.spans[i].start_seconds);
    if (i > 0) {
      EXPECT_GE(snap.spans[i].start_seconds, snap.spans[i - 1].start_seconds);
    }
  }
  // With 4 workers on n = 192 at least one phase ran a task graph.
  EXPECT_FALSE(snap.graphs.empty());

  // --- Chrome trace: must parse as JSON; every complete event monotone;
  // every two-stage phase covered by at least one span.
  const std::string trace = obs::to_chrome_trace_json(snap);
  const obs::JsonValue doc = obs::json_parse(trace);
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<std::string, int> per_phase;
  for (const obs::JsonValue& ev : events->as_array()) {
    if (ev.string_or("ph", "") != "X") continue;
    EXPECT_GE(ev.number_or("dur", -1.0), 0.0);
    if (const obs::JsonValue* args = ev.find("args"))
      ++per_phase[args->string_or("phase", "none")];
  }
  for (const char* phase : {"stage1", "stage2", "solve", "update"}) {
    SCOPED_TRACE(phase);
    EXPECT_GT(per_phase[phase], 0);
  }

  // --- Metrics: parse back; the per-phase seconds must agree with the
  // solver's own PhaseBreakdown (same clock stamps, so only JSON formatting
  // precision in between).
  const obs::JsonValue mdoc = obs::json_parse(obs::to_metrics_json(snap));
  const obs::Report rep = obs::report_from_metrics_json(mdoc);
  EXPECT_TRUE(rep.has_critical_path);
  EXPECT_GT(rep.wall_seconds, 0.0);
  EXPECT_GT(rep.work_seconds, 0.0);
  EXPECT_GT(rep.critical_path_seconds, 0.0);
  std::map<std::string, double> phase_seconds;
  for (const obs::PhaseReport& p : rep.phases) phase_seconds[p.name] = p.seconds;
  const auto near = [](double got, double want) {
    EXPECT_NEAR(got, want, 1e-6 * want + 1e-9);
  };
  near(phase_seconds["stage1"], res.phases.stage1_seconds);
  near(phase_seconds["stage2"], res.phases.stage2_seconds);
  near(phase_seconds["solve"], res.phases.solve_seconds);
  near(phase_seconds["update"], res.phases.update_seconds);

  // The trace embeds the same metrics object, so tseig_prof can rebuild the
  // full report from the trace file alone.
  const obs::Report rep2 = obs::report_from_metrics_json(doc);
  EXPECT_NEAR(rep2.wall_seconds, rep.wall_seconds, 1e-12);
  EXPECT_NEAR(rep2.critical_path_seconds, rep.critical_path_seconds, 1e-12);

  // A bare-trace reload still reproduces the per-phase utilization.
  const obs::Report rep3 = obs::report_from_trace_json(doc);
  EXPECT_FALSE(rep3.has_critical_path);
  double wall3 = 0.0;
  for (const obs::PhaseReport& p : rep3.phases)
    if (p.name == "stage1") wall3 = p.seconds;
  EXPECT_NEAR(wall3, res.phases.stage1_seconds,
              1e-5 * res.phases.stage1_seconds + 1e-8);
}

TEST(Obs, PerSolveExportPathsWriteFilesAndRestoreState) {
  const idx n = 64;
  Rng rng(11);
  Matrix a = testing::random_symmetric(n, rng);

  obs::reset();
  ASSERT_FALSE(obs::enabled());
  solver::SyevOptions o;
  o.num_workers = 2;
  o.trace_path = "/tmp/tseig_obs_test_trace.json";
  o.metrics_path = "/tmp/tseig_obs_test_metrics.json";
  (void)solver::syev(n, a.data(), a.ld(), o);
  // Recording was enabled only for the duration of the solve.
  EXPECT_FALSE(obs::enabled());

  for (const std::string& path : {o.trace_path, o.metrics_path}) {
    SCOPED_TRACE(path);
    std::ifstream f(path);
    ASSERT_TRUE(f.good());
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_NO_THROW(obs::json_parse(buf.str()));
    std::remove(path.c_str());
  }
}

TEST(Obs, ZeroDurationPhaseHasFiniteEfficiency) {
  // A phase span of zero width (or one with no workers) must produce 0%
  // parallel efficiency, never NaN/inf -- and the exported JSON must stay
  // parseable (NaN would be an invalid token).
  obs::reset();
  obs::set_enabled(true);
  const double t = obs::now_seconds();
  obs::record_phase_span("stage1", obs::Phase::stage1, t, t);
  const obs::Snapshot snap = obs::snapshot();
  obs::set_enabled(false);
  obs::reset();

  const obs::Report rep = obs::analyze(snap);
  for (const obs::PhaseReport& p : rep.phases) {
    EXPECT_TRUE(std::isfinite(p.parallel_efficiency)) << p.name;
    EXPECT_EQ(p.parallel_efficiency, 0.0) << p.name;
    EXPECT_TRUE(std::isfinite(p.serial_seconds)) << p.name;
  }
  const obs::JsonValue doc = obs::json_parse(obs::to_metrics_json(snap));
  const obs::Report rep2 = obs::report_from_metrics_json(doc);
  for (const obs::PhaseReport& p : rep2.phases)
    EXPECT_TRUE(std::isfinite(p.parallel_efficiency)) << p.name;
}

TEST(Obs, GraphScheduleMetadataRoundTripsThroughMetrics) {
  obs::reset();
  obs::set_enabled(true);
  rt::TaskGraph g;
  g.set_schedule_info(2, "critical-path");
  for (int i = 0; i < 4; ++i)
    g.submit([] {},
             {rt::wr(rt::region_key(31, static_cast<std::uint32_t>(i), 0))});
  g.run(2);
  const obs::Snapshot snap = obs::snapshot();
  obs::set_enabled(false);
  obs::reset();

  ASSERT_EQ(snap.graphs.size(), 1u);
  EXPECT_EQ(snap.graphs[0].lookahead, 2);
  EXPECT_STREQ(snap.graphs[0].priority_scheme, "critical-path");

  const obs::Report rep = obs::report_from_metrics_json(
      obs::json_parse(obs::to_metrics_json(snap)));
  ASSERT_EQ(rep.graphs.size(), 1u);
  EXPECT_EQ(rep.graphs[0].lookahead, 2);
  EXPECT_EQ(rep.graphs[0].priority_scheme, "critical-path");

  // The human-readable summary prints the schedule line.
  const std::string text = obs::format_report(rep);
  EXPECT_NE(text.find("lookahead=2"), std::string::npos);
  EXPECT_NE(text.find("critical-path"), std::string::npos);
}

}  // namespace
}  // namespace tseig
