// Tests for the runtime trace export (Chrome tracing JSON + summaries).
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "runtime/task_graph.hpp"
#include "runtime/trace_io.hpp"

namespace tseig {
namespace {

std::vector<rt::TraceEvent> run_traced(int workers, int tasks) {
  rt::TaskGraph g;
  for (int i = 0; i < tasks; ++i) {
    rt::TaskGraph::Options opts;
    opts.label = "work";
    g.submit(
        [] {
          volatile double x = 0.0;
          for (int k = 0; k < 1000; ++k) x = x + k;
        },
        {rt::wr(rt::region_key(42, static_cast<std::uint32_t>(i), 0))}, opts);
  }
  g.enable_tracing(true);
  g.run(workers);
  return g.trace();
}

TEST(TraceIo, JsonIsWellFormedAndComplete) {
  auto events = run_traced(3, 17);
  ASSERT_EQ(events.size(), 17u);
  const std::string json = rt::to_chrome_trace(events);
  // Structural sanity (no JSON parser offline): brace balance and one
  // record per task.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  size_t count = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
       ++count, ++pos) {
  }
  EXPECT_EQ(count, 17u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
}

TEST(TraceIo, WriteCreatesFile) {
  auto events = run_traced(2, 5);
  const std::string path = "/tmp/tseig_trace_test.json";
  rt::write_chrome_trace(events, path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream buf;
  buf << f.rdbuf();
  EXPECT_EQ(buf.str(), rt::to_chrome_trace(events));
  std::remove(path.c_str());
}

TEST(TraceIo, SummaryAccountsAllTasks) {
  auto events = run_traced(4, 32);
  auto s = rt::summarize(events);
  EXPECT_EQ(s.tasks, 32);
  EXPECT_GT(s.makespan, 0.0);
  double total = 0.0;
  for (double b : s.busy_seconds) total += b;
  EXPECT_GT(total, 0.0);
  // Busy time can never exceed workers * makespan.
  EXPECT_LE(total, s.busy_seconds.size() * s.makespan * 1.0001 + 1e-9);
}

TEST(TraceIo, EscapesHostileLabels) {
  // Regression: labels containing '"' or '\' used to be pasted verbatim into
  // the JSON, producing a document Perfetto rejects.
  rt::TraceEvent ev;
  ev.label = "evil \"quote\" and \\backslash\\ and \ttab";
  ev.worker = 0;
  ev.start_seconds = 0.5;
  ev.end_seconds = 1.5;
  const std::string json = rt::to_chrome_trace({ev});
  const obs::JsonValue doc = obs::json_parse(json);  // throws if malformed
  const auto& events = doc.find("traceEvents")->as_array();
  ASSERT_EQ(events.size(), 1u);
  // The parser unescapes back to the original label: a true round trip.
  EXPECT_EQ(events[0].string_or("name", ""), ev.label);
}

TEST(TraceIo, SummarizeMakespanIsExtentNotMaxEnd) {
  // Regression: timestamps sit on the shared process-wide epoch, so they do
  // not start near zero.  Makespan must be max(end) - min(start).
  std::vector<rt::TraceEvent> events;
  events.push_back({"a", -1, 0, 1000.0, 1000.5});
  events.push_back({"b", -1, 1, 1000.25, 1001.0});
  const auto s = rt::summarize(events);
  EXPECT_EQ(s.tasks, 2);
  EXPECT_NEAR(s.makespan, 1.0, 1e-9);
  ASSERT_EQ(s.busy_seconds.size(), 2u);
  EXPECT_NEAR(s.busy_seconds[0], 0.5, 1e-9);
  EXPECT_NEAR(s.busy_seconds[1], 0.75, 1e-9);
}

TEST(TraceIo, EmptyTrace) {
  std::vector<rt::TraceEvent> none;
  EXPECT_EQ(rt::to_chrome_trace(none), "{\"traceEvents\":[]}");
  auto s = rt::summarize(none);
  EXPECT_EQ(s.tasks, 0);
  EXPECT_EQ(s.makespan, 0.0);
}

}  // namespace
}  // namespace tseig
