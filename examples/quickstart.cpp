// Quickstart: solve a dense symmetric eigenproblem with the two-stage
// algorithm and verify the result.
//
//   ./example_quickstart [n]
//
// Demonstrates the 10-line happy path of the public API plus the per-phase
// breakdown the paper's Figure 1 is built from.
#include <cstdio>
#include <cstdlib>

#include "tseig.hpp"

int main(int argc, char** argv) {
  using namespace tseig;
  const idx n = argc > 1 ? std::atoll(argv[1]) : 512;

  // A random dense symmetric matrix (entries uniform in (-1,1)).
  Rng rng(42);
  Matrix a = lapack::random_symmetric(n, rng);

  // Solve with the paper's configuration: two-stage reduction + divide &
  // conquer, all eigenvectors.
  solver::SyevOptions opts;
  opts.algo = solver::method::two_stage;
  opts.solver = solver::eig_solver::dc;
  opts.nb = 48;
  auto res = solver::syev(n, a.data(), a.ld(), opts);

  // Verify: residual ||A z - lambda z|| and orthogonality for a few pairs.
  double worst = 0.0;
  std::vector<double> az(static_cast<size_t>(n));
  for (idx j = 0; j < std::min<idx>(n, 10); ++j) {
    blas::symv(uplo::lower, n, 1.0, a.data(), a.ld(), res.z.col(j), 1, 0.0,
               az.data(), 1);
    for (idx i = 0; i < n; ++i)
      worst = std::max(worst, std::fabs(az[static_cast<size_t>(i)] -
                                        res.eigenvalues[static_cast<size_t>(j)] *
                                            res.z(i, j)));
  }

  std::printf("n = %lld\n", static_cast<long long>(n));
  std::printf("eigenvalue range: [%.6f, %.6f]\n", res.eigenvalues.front(),
              res.eigenvalues.back());
  std::printf("max |A z - lambda z| over 10 sampled pairs: %.3e\n", worst);
  std::printf("\nphase breakdown (the paper's Figure 1b shares):\n");
  const double total = res.phases.total_seconds();
  std::printf("  stage 1 (dense->band) : %7.3fs (%4.1f%%)\n",
              res.phases.stage1_seconds, 100 * res.phases.stage1_seconds / total);
  std::printf("  stage 2 (bulge chase) : %7.3fs (%4.1f%%)\n",
              res.phases.stage2_seconds, 100 * res.phases.stage2_seconds / total);
  std::printf("  eig of T (D&C)        : %7.3fs (%4.1f%%)\n",
              res.phases.solve_seconds, 100 * res.phases.solve_seconds / total);
  std::printf("  update Z (Q1 Q2 E)    : %7.3fs (%4.1f%%)\n",
              res.phases.update_seconds, 100 * res.phases.update_seconds / total);
  std::printf("  reduction flops: %.3e  (4/3 n^3 = %.3e)\n",
              static_cast<double>(res.phases.reduction_flops),
              4.0 / 3.0 * static_cast<double>(n) * n * n);
  return worst < 1e-8 * n ? 0 : 1;
}
