// Electronic-structure style workload: a 1-D tight-binding Hamiltonian with
// on-site disorder (Anderson model).
//
//   ./example_tight_binding [n] [disorder]
//
// This is the application domain the paper cites for two-stage eigensolvers
// (the ELPA library targets electronic structure codes): we need the FULL
// eigensystem of a dense-stored Hamiltonian to compute the density of states
// and localization measures.  Compares the one-stage and two-stage pipelines
// on the same matrix and checks they agree.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "tseig.hpp"

int main(int argc, char** argv) {
  using namespace tseig;
  const idx n = argc > 1 ? std::atoll(argv[1]) : 400;
  const double disorder = argc > 2 ? std::atof(argv[2]) : 1.0;

  // H = hopping (-1 on off-diagonals, periodic) + random on-site energies.
  // Stored dense: with long-range corrections real codes add, the matrix is
  // dense, which is why dense eigensolvers matter in this domain.
  Rng rng(7);
  Matrix h(n, n);
  for (idx i = 0; i < n; ++i) {
    h(i, i) = disorder * (2.0 * rng.uniform() - 1.0);
    const idx j = (i + 1) % n;
    h(i, j) = -1.0;
    h(j, i) = -1.0;
    // A weak power-law long-range tail making H genuinely dense.
    for (idx k = i + 2; k < n; ++k) {
      const double r = static_cast<double>(k - i);
      const double v = -0.01 / (r * r * r);
      h(k, i) = v;
      h(i, k) = v;
    }
  }

  solver::SyevOptions two;
  two.algo = solver::method::two_stage;
  two.solver = solver::eig_solver::dc;
  two.nb = 40;
  auto r2 = solver::syev(n, h.data(), h.ld(), two);

  solver::SyevOptions one;
  one.algo = solver::method::one_stage;
  one.solver = solver::eig_solver::dc;
  auto r1 = solver::syev(n, h.data(), h.ld(), one);

  double dmax = 0.0;
  for (idx i = 0; i < n; ++i)
    dmax = std::max(dmax, std::fabs(r1.eigenvalues[static_cast<size_t>(i)] -
                                    r2.eigenvalues[static_cast<size_t>(i)]));
  std::printf("n = %lld, disorder W = %.2f\n", (long long)n, disorder);
  std::printf("one-stage vs two-stage eigenvalue agreement: %.3e\n", dmax);

  // Density of states histogram from the spectrum.
  const double lo = r2.eigenvalues.front(), hi = r2.eigenvalues.back();
  const int bins = 9;
  std::vector<int> hist(bins, 0);
  for (double w : r2.eigenvalues) {
    int b = static_cast<int>((w - lo) / (hi - lo) * bins);
    hist[std::min(b, bins - 1)]++;
  }
  std::printf("density of states (E in [%.3f, %.3f]):\n", lo, hi);
  for (int b = 0; b < bins; ++b) {
    std::printf("  %7.3f |", lo + (b + 0.5) * (hi - lo) / bins);
    for (int s = 0; s < hist[b] * 60 / static_cast<int>(n); ++s)
      std::printf("#");
    std::printf(" %d\n", hist[b]);
  }

  // Inverse participation ratio of the mid-spectrum eigenstate: larger
  // disorder -> stronger localization (larger IPR).
  const idx mid = n / 2;
  double ipr = 0.0;
  for (idx i = 0; i < n; ++i) {
    const double c = r2.z(i, mid);
    ipr += c * c * c * c;
  }
  std::printf("IPR of mid-spectrum state: %.4f (1/n = %.4f)\n", ipr,
              1.0 / static_cast<double>(n));
  std::printf("timings: two-stage %.3fs, one-stage %.3fs\n",
              r2.phases.total_seconds(), r1.phases.total_seconds());
  return dmax < 1e-9 * n ? 0 : 1;
}
