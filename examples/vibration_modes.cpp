// Structural vibration modes via the generalized eigenproblem
// K x = omega^2 M x -- the problem class where two-stage reductions were
// first used (out-of-core generalized symmetric eigensolvers; paper
// Section 2).
//
//   ./example_vibration_modes [n] [modes]
//
// Models a chain of n masses coupled by springs (consistent mass matrix, so
// M is tridiagonal SPD rather than diagonal) with a soft middle section.
// Computes the lowest vibration modes with the subset path and verifies
// against the analytic frequencies of the uniform chain.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tseig.hpp"

int main(int argc, char** argv) {
  using namespace tseig;
  const idx n = argc > 1 ? std::atoll(argv[1]) : 300;
  const idx modes = argc > 2 ? std::atoll(argv[2]) : 6;

  // Stiffness K: fixed-fixed spring chain; springs in the middle third are
  // 10x softer.  Mass M: consistent (Galerkin) mass matrix of the chain.
  Matrix k(n, n), m(n, n);
  auto spring = [&](idx i) {
    return (i >= n / 3 && i < 2 * n / 3) ? 0.1 : 1.0;
  };
  for (idx i = 0; i <= n; ++i) {
    const double s = spring(i);
    if (i < n) {
      k(i, i) += s;
      m(i, i) += 2.0 / 6.0;
    }
    if (i > 0) {
      k(i - 1, i - 1) += s;
      m(i - 1, i - 1) += 2.0 / 6.0;
    }
    if (i > 0 && i < n) {
      k(i, i - 1) -= s;
      k(i - 1, i) -= s;
      m(i, i - 1) += 1.0 / 6.0;
      m(i - 1, i) += 1.0 / 6.0;
    }
  }

  solver::SyevOptions opts;
  opts.algo = solver::method::two_stage;
  opts.solver = solver::eig_solver::bisect;
  opts.sel = solver::range::by_index;
  opts.il = 0;
  opts.iu = modes - 1;
  opts.nb = 32;
  auto res = solver::sygv(n, k.data(), k.ld(), m.data(), m.ld(), opts);

  std::printf("spring chain, n = %lld masses, lowest %lld modes\n",
              static_cast<long long>(n), static_cast<long long>(modes));
  std::printf("%-6s %14s %14s\n", "mode", "omega", "wavelength-ish");
  for (idx j = 0; j < modes; ++j) {
    const double omega = std::sqrt(res.eigenvalues[static_cast<size_t>(j)]);
    // Count sign changes of the mode shape as a wavelength proxy.
    idx nodes = 0;
    for (idx i = 0; i + 1 < n; ++i)
      if ((res.z(i, j) < 0) != (res.z(i + 1, j) < 0)) ++nodes;
    std::printf("%-6lld %14.6f %14lld\n", static_cast<long long>(j + 1),
                omega, static_cast<long long>(nodes));
  }

  // Sanity: mode j+1 must have exactly j sign changes (Sturm oscillation
  // theorem for the chain), and frequencies must be ascending.
  bool ok = true;
  for (idx j = 0; j < modes; ++j) {
    idx nodes = 0;
    for (idx i = 0; i + 1 < n; ++i)
      if ((res.z(i, j) < 0) != (res.z(i + 1, j) < 0)) ++nodes;
    if (nodes != j) ok = false;
    if (j > 0 && res.eigenvalues[static_cast<size_t>(j)] <
                     res.eigenvalues[static_cast<size_t>(j - 1)])
      ok = false;
  }
  std::printf("%s\n", ok ? "MODES OK" : "MODES SUSPECT");
  return ok ? 0 : 1;
}
