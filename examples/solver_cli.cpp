// Command-line eigensolver: solves a dense symmetric matrix from a plain
// text file (or a generated test matrix) and prints/writes the spectrum.
//
//   ./example_solver_cli --n 512 --spectrum geometric --cond 1e8
//   ./example_solver_cli --in matrix.txt --method one-stage --solver qr
//   ./example_solver_cli --n 400 --f 0.1 --out eigs.txt --verify
//
// Matrix file format: first line "n", then n*n whitespace-separated entries
// in row-major order (the matrix must be symmetric; the lower triangle is
// used).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "tseig.hpp"

using namespace tseig;

namespace {

const char* kUsage =
    "usage: example_solver_cli [options]\n"
    "  --in FILE          read matrix from FILE (default: generate)\n"
    "  --n N              generated matrix size (default 256)\n"
    "  --spectrum KIND    linear|geometric|clustered|two-cluster|uniform\n"
    "  --cond C           condition number for geometric/clustered (1e6)\n"
    "  --method M         two-stage (default) | one-stage\n"
    "  --solver S         dc (default) | qr | bisect\n"
    "  --f F              fraction of eigenvectors (default 1.0)\n"
    "  --values-only      skip eigenvectors\n"
    "  --nb NB            band width / tile size (default 48)\n"
    "  --workers W        task-DAG workers (default 1)\n"
    "  --out FILE         write eigenvalues to FILE\n"
    "  --verify           check residual/orthogonality and report\n";

const char* get_arg(int argc, char** argv, const char* key) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], key) == 0) return argv[i + 1];
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* key) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], key) == 0) return true;
  return false;
}

Matrix load_matrix(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw invalid_argument("cannot open " + path);
  idx n = 0;
  f >> n;
  if (n <= 0) throw invalid_argument("bad matrix header in " + path);
  Matrix a(n, n);
  for (idx i = 0; i < n; ++i)
    for (idx j = 0; j < n; ++j)
      if (!(f >> a(i, j))) throw invalid_argument("truncated matrix file");
  // Symmetrize from the lower triangle.
  for (idx j = 0; j < n; ++j)
    for (idx i = j + 1; i < n; ++i) a(j, i) = a(i, j);
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  try {
    // --- Build or load the matrix. ---
    Matrix a;
    Rng rng(2026);
    if (const char* path = get_arg(argc, argv, "--in")) {
      a = load_matrix(path);
    } else {
      const idx n = get_arg(argc, argv, "--n")
                        ? std::atoll(get_arg(argc, argv, "--n"))
                        : 256;
      const double cond = get_arg(argc, argv, "--cond")
                              ? std::atof(get_arg(argc, argv, "--cond"))
                              : 1e6;
      const char* kind = get_arg(argc, argv, "--spectrum");
      if (kind == nullptr) {
        a = lapack::random_symmetric(n, rng);
      } else {
        lapack::spectrum_kind sk = lapack::spectrum_kind::linear;
        if (std::strcmp(kind, "geometric") == 0)
          sk = lapack::spectrum_kind::geometric;
        else if (std::strcmp(kind, "clustered") == 0)
          sk = lapack::spectrum_kind::clustered;
        else if (std::strcmp(kind, "two-cluster") == 0)
          sk = lapack::spectrum_kind::two_cluster;
        else if (std::strcmp(kind, "uniform") == 0)
          sk = lapack::spectrum_kind::random_uniform;
        else if (std::strcmp(kind, "linear") != 0)
          throw invalid_argument("unknown --spectrum");
        auto eigs = lapack::make_spectrum(sk, n, cond, rng);
        a = lapack::symmetric_with_spectrum(eigs, rng);
      }
    }
    const idx n = a.rows();

    // --- Options. ---
    solver::SyevOptions opts;
    if (const char* m = get_arg(argc, argv, "--method")) {
      if (std::strcmp(m, "one-stage") == 0)
        opts.algo = solver::method::one_stage;
      else if (std::strcmp(m, "two-stage") != 0)
        throw invalid_argument("unknown --method");
    }
    if (const char* s = get_arg(argc, argv, "--solver")) {
      if (std::strcmp(s, "qr") == 0) opts.solver = solver::eig_solver::qr;
      else if (std::strcmp(s, "bisect") == 0)
        opts.solver = solver::eig_solver::bisect;
      else if (std::strcmp(s, "dc") != 0)
        throw invalid_argument("unknown --solver");
    }
    if (const char* f = get_arg(argc, argv, "--f")) opts.fraction = std::atof(f);
    if (has_flag(argc, argv, "--values-only"))
      opts.job = solver::jobz::values_only;
    if (const char* nb = get_arg(argc, argv, "--nb")) opts.nb = std::atoll(nb);
    if (const char* w = get_arg(argc, argv, "--workers"))
      opts.num_workers = std::atoi(w);

    // --- Solve. ---
    WallTimer timer;
    auto res = solver::syev(n, a.data(), a.ld(), opts);
    const double secs = timer.seconds();

    std::printf("n = %lld, eigenvalues computed: %zu, eigenvectors: %lld\n",
                static_cast<long long>(n), res.eigenvalues.size(),
                static_cast<long long>(res.z.cols()));
    std::printf("time: %.3fs  (reduction %.3fs, solve %.3fs, update %.3fs)\n",
                secs, res.phases.reduction_seconds, res.phases.solve_seconds,
                res.phases.update_seconds);
    std::printf("spectrum: [%.6g, %.6g]\n", res.eigenvalues.front(),
                res.eigenvalues.back());

    if (const char* out = get_arg(argc, argv, "--out")) {
      std::ofstream f(out);
      for (double w : res.eigenvalues) f << w << "\n";
      std::printf("eigenvalues written to %s\n", out);
    }

    if (has_flag(argc, argv, "--verify") && res.z.cols() > 0) {
      double resid = 0.0;
      std::vector<double> az(static_cast<size_t>(n));
      for (idx j = 0; j < res.z.cols(); ++j) {
        blas::symv(uplo::lower, n, 1.0, a.data(), a.ld(), res.z.col(j), 1,
                   0.0, az.data(), 1);
        for (idx i = 0; i < n; ++i)
          resid = std::max(resid,
                           std::fabs(az[static_cast<size_t>(i)] -
                                     res.eigenvalues[static_cast<size_t>(j)] *
                                         res.z(i, j)));
      }
      const double anorm =
          lapack::lansy(lapack::norm::one, uplo::lower, n, a.data(), a.ld());
      std::printf("verify: max residual %.3e (relative %.3e) -> %s\n", resid,
                  resid / std::max(anorm, 1e-300),
                  resid <= 1e-10 * anorm * n ? "OK" : "SUSPECT");
    }
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n%s", ex.what(), kUsage);
    return 1;
  }
}
