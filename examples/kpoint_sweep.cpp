// k-point sweep: the canonical *batched* eigensolver workload.
//
//   ./example_kpoint_sweep [n] [nk] [workers]
//
// Electronic-structure codes diagonalize one Hamiltonian H(k) per k-point
// of a Brillouin-zone mesh -- dozens to thousands of independent medium-size
// dense problems per SCF iteration, not one big one.  This example builds a
// real symmetric supercell model
//
//   H(k) = H0 + cos(k) V      (H0 = intra-cell chain, V = cell-boundary
//                              coupling; a k.p-style parameterization)
//
// for nk mesh points and solves all of them in one solver::syev_batch call,
// then prints the resulting band structure and the batch scheduling stats
// against a sequential loop over solver::syev.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "tseig.hpp"

int main(int argc, char** argv) {
  using namespace tseig;
  const idx n = argc > 1 ? std::atoll(argv[1]) : 96;    // orbitals per cell
  const idx nk = argc > 2 ? std::atoll(argv[2]) : 24;   // mesh points
  const int workers = argc > 3 ? std::atoi(argv[3]) : 0;  // 0 = default

  // Shared pieces: H0 (chain with soft long-range tail, on-site pattern)
  // and the boundary-coupling perturbation V.
  Rng rng(2026);
  Matrix h0(n, n);
  for (idx i = 0; i < n; ++i) {
    h0(i, i) = 0.3 * (2.0 * rng.uniform() - 1.0);
    if (i + 1 < n) {
      h0(i + 1, i) = -1.0;
      h0(i, i + 1) = -1.0;
    }
  }
  Matrix v(n, n);
  for (idx i = 0; i < std::min<idx>(n, 4); ++i) {
    const idx j = n - 1 - i;
    v(i, j) = v(j, i) = -0.5;
    v(i, i) = 0.1;
    v(j, j) = 0.1;
  }

  // One H(k) per mesh point.  Each matrix must stay alive for the duration
  // of the batch call; BatchProblem only references it.
  std::vector<Matrix> hk(static_cast<size_t>(nk));
  std::vector<solver::BatchProblem> batch(static_cast<size_t>(nk));
  for (idx q = 0; q < nk; ++q) {
    const double k = M_PI * static_cast<double>(q) / static_cast<double>(nk - 1);
    Matrix& h = hk[static_cast<size_t>(q)];
    h.reshape(n, n);
    for (idx j = 0; j < n; ++j)
      for (idx i = 0; i < n; ++i) h(i, j) = h0(i, j) + std::cos(k) * v(i, j);
    solver::BatchProblem& p = batch[static_cast<size_t>(q)];
    p.n = n;
    p.a = h.data();
    p.lda = h.ld();
    p.opts.algo = solver::method::two_stage;
    p.opts.solver = solver::eig_solver::dc;
  }

  // Sequential baseline: the loop every production code starts with.
  WallTimer seq_timer;
  std::vector<solver::SyevResult> seq(static_cast<size_t>(nk));
  for (idx q = 0; q < nk; ++q) {
    const solver::BatchProblem& p = batch[static_cast<size_t>(q)];
    seq[static_cast<size_t>(q)] = solver::syev(p.n, p.a, p.lda, p.opts);
  }
  const double seq_seconds = seq_timer.seconds();

  // Batched solve: same answers (bitwise), one scheduler call.
  solver::SyevBatchOptions bopts;
  bopts.num_workers = workers;
  auto out = solver::syev_batch(batch, bopts);

  double dmax = 0.0;
  for (idx q = 0; q < nk; ++q)
    for (idx i = 0; i < n; ++i)
      dmax = std::max(dmax,
                      std::fabs(out.results[static_cast<size_t>(q)]
                                    .eigenvalues[static_cast<size_t>(i)] -
                                seq[static_cast<size_t>(q)]
                                    .eigenvalues[static_cast<size_t>(i)]));

  std::printf("k-point sweep: n = %lld orbitals, nk = %lld mesh points\n",
              (long long)n, (long long)nk);
  std::printf("batch vs sequential-loop eigenvalue difference: %.1e "
              "(bitwise contract: 0)\n", dmax);
  std::printf("sequential loop: %.3f s   syev_batch: %.3f s   (%d workers, "
              "occupancy %.0f%%)\n",
              seq_seconds, out.stats.total_seconds, out.stats.num_workers,
              100.0 * out.stats.occupancy());
  std::printf("scheduling: %lld whole-problem tasks, %lld full-budget "
              "problems (crossover n = %lld)\n",
              (long long)out.stats.whole_problem_count,
              (long long)out.stats.partitioned_count,
              (long long)out.stats.crossover);

  // Band structure: lowest 8 bands along the mesh.
  const idx bands = std::min<idx>(8, n);
  std::printf("\nlowest %lld bands E_b(k):\n  k/pi ", (long long)bands);
  for (idx b = 0; b < bands; ++b) std::printf("   band%lld", (long long)b);
  std::printf("\n");
  for (idx q = 0; q < nk; q += std::max<idx>(1, nk / 8)) {
    std::printf("  %4.2f ",
                static_cast<double>(q) / static_cast<double>(nk - 1));
    for (idx b = 0; b < bands; ++b)
      std::printf(" %7.3f", out.results[static_cast<size_t>(q)]
                                .eigenvalues[static_cast<size_t>(b)]);
    std::printf("\n");
  }
  return dmax == 0.0 ? 0 : 1;
}
