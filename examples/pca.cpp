// Principal component analysis of synthetic data via the eigenvector-subset
// path (largest eigenvalues of the covariance matrix).
//
//   ./example_pca [features] [samples] [components]
//
// The subset solver computes the SMALLEST eigenvalues, so we solve for -C:
// its smallest eigenpairs are C's largest.  This is the "portion of the
// eigenvectors" use case the paper quantifies in Figure 4d (f = k/n).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "tseig.hpp"

int main(int argc, char** argv) {
  using namespace tseig;
  const idx p = argc > 1 ? std::atoll(argv[1]) : 300;  // features
  const idx m = argc > 2 ? std::atoll(argv[2]) : 2000; // samples
  const idx k = argc > 3 ? std::atoll(argv[3]) : 5;    // components

  // Synthetic data with a known 3-dimensional latent structure plus noise:
  // x = W t + 0.05 * noise, W a fixed p-by-3 mixing matrix.
  Rng rng(11);
  const idx rank = 3;
  Matrix w(p, rank);
  rng.fill_normal(w.data(), p * rank);
  Matrix x(p, m);
  std::vector<double> t(static_cast<size_t>(rank));
  for (idx j = 0; j < m; ++j) {
    rng.fill_normal(t.data(), rank);
    for (idx i = 0; i < p; ++i) {
      double v = 0.0;
      for (idx r = 0; r < rank; ++r) v += w(i, r) * t[static_cast<size_t>(r)];
      x(i, j) = v + 0.05 * rng.normal();
    }
  }

  // Covariance C = X X^T / m (data already zero-mean by construction),
  // negated so the subset solver's smallest eigenvalues are C's largest.
  Matrix negc(p, p);
  blas::syrk(uplo::lower, op::none, p, m, -1.0 / static_cast<double>(m),
             x.data(), x.ld(), 0.0, negc.data(), negc.ld());

  solver::SyevOptions opts;
  opts.algo = solver::method::two_stage;
  opts.solver = solver::eig_solver::bisect;
  opts.fraction = static_cast<double>(k) / static_cast<double>(p);
  opts.nb = 32;
  auto res = solver::syev(p, negc.data(), negc.ld(), opts);

  std::printf("features p = %lld, samples m = %lld, components k = %lld\n",
              (long long)p, (long long)m, (long long)k);
  std::printf("top eigenvalues of the covariance:\n");
  double total_var = 0.0;
  for (idx i = 0; i < p; ++i) total_var += -negc(i, i);  // trace(C)
  double captured = 0.0;
  for (idx j = 0; j < k; ++j) {
    const double lambda = -res.eigenvalues[static_cast<size_t>(j)];
    captured += lambda;
    std::printf("  PC%lld: %10.4f\n", (long long)(j + 1), lambda);
  }
  std::printf("variance captured by %lld PCs: %.1f%% of trace\n",
              (long long)k, 100.0 * captured / total_var);

  // With a rank-3 latent structure + small noise, 3 components must explain
  // almost everything.
  double captured3 = 0.0;
  for (idx j = 0; j < std::min<idx>(3, k); ++j)
    captured3 += -res.eigenvalues[static_cast<size_t>(j)];
  const bool ok = captured3 / total_var > 0.95;
  std::printf("%s (top-3 share %.1f%%)\n", ok ? "PCA OK" : "PCA SUSPECT",
              100.0 * captured3 / total_var);
  return ok ? 0 : 1;
}
