// Spectral graph partitioning with the eigenvector-subset path.
//
//   ./example_spectral_partition [gx] [gy]
//
// Builds the Laplacian of a gx-by-gy grid graph with a weak bridge between
// two halves, computes the two smallest eigenpairs via the two-stage
// reduction + bisection/inverse-iteration subset solver (the f << 1 scenario
// of the paper's Figure 4d), and partitions the graph by the sign of the
// Fiedler vector.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "tseig.hpp"

int main(int argc, char** argv) {
  using namespace tseig;
  const idx gx = argc > 1 ? std::atoll(argv[1]) : 16;
  const idx gy = argc > 2 ? std::atoll(argv[2]) : 12;
  const idx n = gx * gy;

  // Grid-graph Laplacian: L = D - W, 4-neighbour connectivity, with the
  // vertical edges in the middle column down-weighted (a "bridge") so the
  // natural cut is the left/right split.
  Matrix lap(n, n);
  auto node = [&](idx x, idx y) { return x * gy + y; };
  auto add_edge = [&](idx u, idx v, double w) {
    lap(u, u) += w;
    lap(v, v) += w;
    lap(u, v) -= w;
    lap(v, u) -= w;
  };
  for (idx x = 0; x < gx; ++x) {
    for (idx y = 0; y < gy; ++y) {
      if (y + 1 < gy) add_edge(node(x, y), node(x, y + 1), 1.0);
      if (x + 1 < gx)
        add_edge(node(x, y), node(x + 1, y), x == gx / 2 - 1 ? 0.05 : 1.0);
    }
  }

  // Smallest two eigenpairs: lambda_0 ~ 0 (constant vector), lambda_1 is the
  // algebraic connectivity, its eigenvector the Fiedler vector.
  solver::SyevOptions opts;
  opts.algo = solver::method::two_stage;
  opts.solver = solver::eig_solver::bisect;
  opts.fraction = 2.0 / static_cast<double>(n);
  opts.nb = 32;
  auto res = solver::syev(n, lap.data(), lap.ld(), opts);

  std::printf("grid %lld x %lld (n = %lld)\n", (long long)gx, (long long)gy,
              (long long)n);
  std::printf("lambda_0 = %.3e (expect ~0), lambda_1 = %.6f\n",
              res.eigenvalues[0], res.eigenvalues[1]);

  // Partition by the Fiedler vector's sign; count cut edges.
  const double* fiedler = res.z.col(1);
  idx cut = 0, left = 0;
  for (idx x = 0; x < gx; ++x)
    for (idx y = 0; y < gy; ++y) {
      if (fiedler[node(x, y)] < 0) ++left;
      if (y + 1 < gy &&
          (fiedler[node(x, y)] < 0) != (fiedler[node(x, y + 1)] < 0))
        ++cut;
      if (x + 1 < gx &&
          (fiedler[node(x, y)] < 0) != (fiedler[node(x + 1, y)] < 0))
        ++cut;
    }
  std::printf("partition sizes: %lld / %lld, cut edges: %lld\n",
              (long long)left, (long long)(n - left), (long long)cut);

  // The bridge construction makes the ideal cut exactly gy edges with a
  // balanced split; verify we found it (or close).
  const bool balanced = std::llabs((long long)(2 * left - n)) <= n / 8;
  const bool small_cut = cut <= gy + 2;
  std::printf("%s\n", balanced && small_cut ? "PARTITION OK" : "PARTITION SUSPECT");
  return balanced && small_cut ? 0 : 1;
}
