# Empty dependencies file for test_blas2.
# This may be replaced when dependencies are built.
