file(REMOVE_RECURSE
  "CMakeFiles/test_blas2.dir/test_blas2.cpp.o"
  "CMakeFiles/test_blas2.dir/test_blas2.cpp.o.d"
  "test_blas2"
  "test_blas2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
