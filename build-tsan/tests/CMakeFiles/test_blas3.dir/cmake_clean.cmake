file(REMOVE_RECURSE
  "CMakeFiles/test_blas3.dir/test_blas3.cpp.o"
  "CMakeFiles/test_blas3.dir/test_blas3.cpp.o.d"
  "test_blas3"
  "test_blas3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blas3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
