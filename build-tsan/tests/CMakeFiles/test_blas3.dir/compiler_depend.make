# Empty compiler generated dependencies file for test_blas3.
# This may be replaced when dependencies are built.
