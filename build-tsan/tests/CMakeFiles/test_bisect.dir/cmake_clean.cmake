file(REMOVE_RECURSE
  "CMakeFiles/test_bisect.dir/test_bisect.cpp.o"
  "CMakeFiles/test_bisect.dir/test_bisect.cpp.o.d"
  "test_bisect"
  "test_bisect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bisect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
