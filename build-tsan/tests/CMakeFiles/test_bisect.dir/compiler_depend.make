# Empty compiler generated dependencies file for test_bisect.
# This may be replaced when dependencies are built.
