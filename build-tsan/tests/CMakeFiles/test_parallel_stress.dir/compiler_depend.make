# Empty compiler generated dependencies file for test_parallel_stress.
# This may be replaced when dependencies are built.
