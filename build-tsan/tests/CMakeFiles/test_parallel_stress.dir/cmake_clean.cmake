file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_stress.dir/test_parallel_stress.cpp.o"
  "CMakeFiles/test_parallel_stress.dir/test_parallel_stress.cpp.o.d"
  "test_parallel_stress"
  "test_parallel_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
