# Empty dependencies file for test_pipeline_properties.
# This may be replaced when dependencies are built.
