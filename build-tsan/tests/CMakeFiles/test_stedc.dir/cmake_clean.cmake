file(REMOVE_RECURSE
  "CMakeFiles/test_stedc.dir/test_stedc.cpp.o"
  "CMakeFiles/test_stedc.dir/test_stedc.cpp.o.d"
  "test_stedc"
  "test_stedc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stedc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
