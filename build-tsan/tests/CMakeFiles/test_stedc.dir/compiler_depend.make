# Empty compiler generated dependencies file for test_stedc.
# This may be replaced when dependencies are built.
