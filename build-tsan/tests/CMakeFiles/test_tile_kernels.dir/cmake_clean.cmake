file(REMOVE_RECURSE
  "CMakeFiles/test_tile_kernels.dir/test_tile_kernels.cpp.o"
  "CMakeFiles/test_tile_kernels.dir/test_tile_kernels.cpp.o.d"
  "test_tile_kernels"
  "test_tile_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tile_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
