# Empty compiler generated dependencies file for test_tile_kernels.
# This may be replaced when dependencies are built.
