# Empty compiler generated dependencies file for test_syev.
# This may be replaced when dependencies are built.
