file(REMOVE_RECURSE
  "CMakeFiles/test_syev.dir/test_syev.cpp.o"
  "CMakeFiles/test_syev.dir/test_syev.cpp.o.d"
  "test_syev"
  "test_syev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
