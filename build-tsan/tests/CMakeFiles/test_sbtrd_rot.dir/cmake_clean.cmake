file(REMOVE_RECURSE
  "CMakeFiles/test_sbtrd_rot.dir/test_sbtrd_rot.cpp.o"
  "CMakeFiles/test_sbtrd_rot.dir/test_sbtrd_rot.cpp.o.d"
  "test_sbtrd_rot"
  "test_sbtrd_rot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sbtrd_rot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
