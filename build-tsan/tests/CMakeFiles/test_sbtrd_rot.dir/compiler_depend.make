# Empty compiler generated dependencies file for test_sbtrd_rot.
# This may be replaced when dependencies are built.
