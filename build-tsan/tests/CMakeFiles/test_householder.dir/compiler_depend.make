# Empty compiler generated dependencies file for test_householder.
# This may be replaced when dependencies are built.
