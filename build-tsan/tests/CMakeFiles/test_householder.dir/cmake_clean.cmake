file(REMOVE_RECURSE
  "CMakeFiles/test_householder.dir/test_householder.cpp.o"
  "CMakeFiles/test_householder.dir/test_householder.cpp.o.d"
  "test_householder"
  "test_householder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_householder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
