file(REMOVE_RECURSE
  "CMakeFiles/test_q2_apply.dir/test_q2_apply.cpp.o"
  "CMakeFiles/test_q2_apply.dir/test_q2_apply.cpp.o.d"
  "test_q2_apply"
  "test_q2_apply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_q2_apply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
