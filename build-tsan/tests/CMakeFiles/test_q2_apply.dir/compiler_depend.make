# Empty compiler generated dependencies file for test_q2_apply.
# This may be replaced when dependencies are built.
