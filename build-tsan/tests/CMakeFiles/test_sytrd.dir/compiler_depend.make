# Empty compiler generated dependencies file for test_sytrd.
# This may be replaced when dependencies are built.
