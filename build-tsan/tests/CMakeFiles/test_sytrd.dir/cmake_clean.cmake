file(REMOVE_RECURSE
  "CMakeFiles/test_sytrd.dir/test_sytrd.cpp.o"
  "CMakeFiles/test_sytrd.dir/test_sytrd.cpp.o.d"
  "test_sytrd"
  "test_sytrd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sytrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
