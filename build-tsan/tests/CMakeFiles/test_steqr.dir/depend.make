# Empty dependencies file for test_steqr.
# This may be replaced when dependencies are built.
