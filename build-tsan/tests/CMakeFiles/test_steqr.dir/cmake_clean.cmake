file(REMOVE_RECURSE
  "CMakeFiles/test_steqr.dir/test_steqr.cpp.o"
  "CMakeFiles/test_steqr.dir/test_steqr.cpp.o.d"
  "test_steqr"
  "test_steqr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steqr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
