# Empty dependencies file for test_sygv.
# This may be replaced when dependencies are built.
