file(REMOVE_RECURSE
  "CMakeFiles/test_sygv.dir/test_sygv.cpp.o"
  "CMakeFiles/test_sygv.dir/test_sygv.cpp.o.d"
  "test_sygv"
  "test_sygv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sygv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
