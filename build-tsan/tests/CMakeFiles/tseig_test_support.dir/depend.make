# Empty dependencies file for tseig_test_support.
# This may be replaced when dependencies are built.
