file(REMOVE_RECURSE
  "libtseig_test_support.a"
)
