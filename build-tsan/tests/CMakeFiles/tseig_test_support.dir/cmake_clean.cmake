file(REMOVE_RECURSE
  "CMakeFiles/tseig_test_support.dir/support/test_support.cpp.o"
  "CMakeFiles/tseig_test_support.dir/support/test_support.cpp.o.d"
  "libtseig_test_support.a"
  "libtseig_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tseig_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
