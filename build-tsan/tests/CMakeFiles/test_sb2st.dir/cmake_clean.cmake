file(REMOVE_RECURSE
  "CMakeFiles/test_sb2st.dir/test_sb2st.cpp.o"
  "CMakeFiles/test_sb2st.dir/test_sb2st.cpp.o.d"
  "test_sb2st"
  "test_sb2st.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sb2st.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
