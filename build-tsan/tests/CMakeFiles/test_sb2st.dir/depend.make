# Empty dependencies file for test_sb2st.
# This may be replaced when dependencies are built.
