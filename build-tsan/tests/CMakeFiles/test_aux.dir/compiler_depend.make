# Empty compiler generated dependencies file for test_aux.
# This may be replaced when dependencies are built.
