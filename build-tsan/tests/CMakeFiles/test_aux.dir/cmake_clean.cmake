file(REMOVE_RECURSE
  "CMakeFiles/test_aux.dir/test_aux.cpp.o"
  "CMakeFiles/test_aux.dir/test_aux.cpp.o.d"
  "test_aux"
  "test_aux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
