# Empty dependencies file for test_sy2sb.
# This may be replaced when dependencies are built.
