file(REMOVE_RECURSE
  "CMakeFiles/test_sy2sb.dir/test_sy2sb.cpp.o"
  "CMakeFiles/test_sy2sb.dir/test_sy2sb.cpp.o.d"
  "test_sy2sb"
  "test_sy2sb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sy2sb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
