file(REMOVE_RECURSE
  "CMakeFiles/test_syev_range.dir/test_syev_range.cpp.o"
  "CMakeFiles/test_syev_range.dir/test_syev_range.cpp.o.d"
  "test_syev_range"
  "test_syev_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_syev_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
