# Empty dependencies file for test_syev_range.
# This may be replaced when dependencies are built.
