file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_opmix.dir/bench_table2_opmix.cpp.o"
  "CMakeFiles/bench_table2_opmix.dir/bench_table2_opmix.cpp.o.d"
  "bench_table2_opmix"
  "bench_table2_opmix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_opmix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
