# Empty dependencies file for bench_table2_opmix.
# This may be replaced when dependencies are built.
