# Empty compiler generated dependencies file for bench_trace_schedule.
# This may be replaced when dependencies are built.
