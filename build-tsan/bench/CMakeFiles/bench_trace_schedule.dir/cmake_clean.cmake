file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_schedule.dir/bench_trace_schedule.cpp.o"
  "CMakeFiles/bench_trace_schedule.dir/bench_trace_schedule.cpp.o.d"
  "bench_trace_schedule"
  "bench_trace_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
