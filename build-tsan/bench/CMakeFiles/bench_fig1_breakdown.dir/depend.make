# Empty dependencies file for bench_fig1_breakdown.
# This may be replaced when dependencies are built.
