file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_machine.dir/bench_table3_machine.cpp.o"
  "CMakeFiles/bench_table3_machine.dir/bench_table3_machine.cpp.o.d"
  "bench_table3_machine"
  "bench_table3_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
