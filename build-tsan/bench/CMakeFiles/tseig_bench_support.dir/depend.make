# Empty dependencies file for tseig_bench_support.
# This may be replaced when dependencies are built.
