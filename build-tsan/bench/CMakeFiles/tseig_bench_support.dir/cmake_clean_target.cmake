file(REMOVE_RECURSE
  "libtseig_bench_support.a"
)
