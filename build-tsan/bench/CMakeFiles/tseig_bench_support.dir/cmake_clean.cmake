file(REMOVE_RECURSE
  "CMakeFiles/tseig_bench_support.dir/support/bench_support.cpp.o"
  "CMakeFiles/tseig_bench_support.dir/support/bench_support.cpp.o.d"
  "libtseig_bench_support.a"
  "libtseig_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tseig_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
