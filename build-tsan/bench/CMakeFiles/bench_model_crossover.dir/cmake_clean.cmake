file(REMOVE_RECURSE
  "CMakeFiles/bench_model_crossover.dir/bench_model_crossover.cpp.o"
  "CMakeFiles/bench_model_crossover.dir/bench_model_crossover.cpp.o.d"
  "bench_model_crossover"
  "bench_model_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
