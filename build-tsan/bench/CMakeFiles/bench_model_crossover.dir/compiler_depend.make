# Empty compiler generated dependencies file for bench_model_crossover.
# This may be replaced when dependencies are built.
