file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_tilesize.dir/bench_fig5_tilesize.cpp.o"
  "CMakeFiles/bench_fig5_tilesize.dir/bench_fig5_tilesize.cpp.o.d"
  "bench_fig5_tilesize"
  "bench_fig5_tilesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_tilesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
