file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_grouping.dir/bench_ablation_grouping.cpp.o"
  "CMakeFiles/bench_ablation_grouping.dir/bench_ablation_grouping.cpp.o.d"
  "bench_ablation_grouping"
  "bench_ablation_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
