# Empty dependencies file for bench_ablation_grouping.
# This may be replaced when dependencies are built.
