file(REMOVE_RECURSE
  "CMakeFiles/bench_model_bulge.dir/bench_model_bulge.cpp.o"
  "CMakeFiles/bench_model_bulge.dir/bench_model_bulge.cpp.o.d"
  "bench_model_bulge"
  "bench_model_bulge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_bulge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
