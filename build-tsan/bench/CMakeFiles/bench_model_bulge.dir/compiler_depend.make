# Empty compiler generated dependencies file for bench_model_bulge.
# This may be replaced when dependencies are built.
