# Empty dependencies file for tseig.
# This may be replaced when dependencies are built.
