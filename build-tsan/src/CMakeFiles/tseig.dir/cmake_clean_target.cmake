file(REMOVE_RECURSE
  "libtseig.a"
)
