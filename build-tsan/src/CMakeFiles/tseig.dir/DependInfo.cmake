
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/blas1.cpp" "src/CMakeFiles/tseig.dir/blas/blas1.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/blas/blas1.cpp.o.d"
  "/root/repo/src/blas/blas2.cpp" "src/CMakeFiles/tseig.dir/blas/blas2.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/blas/blas2.cpp.o.d"
  "/root/repo/src/blas/blas3.cpp" "src/CMakeFiles/tseig.dir/blas/blas3.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/blas/blas3.cpp.o.d"
  "/root/repo/src/lapack/aux.cpp" "src/CMakeFiles/tseig.dir/lapack/aux.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/lapack/aux.cpp.o.d"
  "/root/repo/src/lapack/generators.cpp" "src/CMakeFiles/tseig.dir/lapack/generators.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/lapack/generators.cpp.o.d"
  "/root/repo/src/lapack/householder.cpp" "src/CMakeFiles/tseig.dir/lapack/householder.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/lapack/householder.cpp.o.d"
  "/root/repo/src/lapack/potrf.cpp" "src/CMakeFiles/tseig.dir/lapack/potrf.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/lapack/potrf.cpp.o.d"
  "/root/repo/src/lapack/steqr.cpp" "src/CMakeFiles/tseig.dir/lapack/steqr.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/lapack/steqr.cpp.o.d"
  "/root/repo/src/onestage/sytrd.cpp" "src/CMakeFiles/tseig.dir/onestage/sytrd.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/onestage/sytrd.cpp.o.d"
  "/root/repo/src/runtime/task_graph.cpp" "src/CMakeFiles/tseig.dir/runtime/task_graph.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/runtime/task_graph.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/tseig.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/runtime/trace_io.cpp" "src/CMakeFiles/tseig.dir/runtime/trace_io.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/runtime/trace_io.cpp.o.d"
  "/root/repo/src/solver/syev.cpp" "src/CMakeFiles/tseig.dir/solver/syev.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/solver/syev.cpp.o.d"
  "/root/repo/src/solver/sygv.cpp" "src/CMakeFiles/tseig.dir/solver/sygv.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/solver/sygv.cpp.o.d"
  "/root/repo/src/tridiag/bisect.cpp" "src/CMakeFiles/tseig.dir/tridiag/bisect.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/tridiag/bisect.cpp.o.d"
  "/root/repo/src/tridiag/stedc.cpp" "src/CMakeFiles/tseig.dir/tridiag/stedc.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/tridiag/stedc.cpp.o.d"
  "/root/repo/src/twostage/q2_apply.cpp" "src/CMakeFiles/tseig.dir/twostage/q2_apply.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/twostage/q2_apply.cpp.o.d"
  "/root/repo/src/twostage/sb2st.cpp" "src/CMakeFiles/tseig.dir/twostage/sb2st.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/twostage/sb2st.cpp.o.d"
  "/root/repo/src/twostage/sbtrd_rot.cpp" "src/CMakeFiles/tseig.dir/twostage/sbtrd_rot.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/twostage/sbtrd_rot.cpp.o.d"
  "/root/repo/src/twostage/sy2sb.cpp" "src/CMakeFiles/tseig.dir/twostage/sy2sb.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/twostage/sy2sb.cpp.o.d"
  "/root/repo/src/twostage/tile_kernels.cpp" "src/CMakeFiles/tseig.dir/twostage/tile_kernels.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/twostage/tile_kernels.cpp.o.d"
  "/root/repo/src/twostage/tile_matrix.cpp" "src/CMakeFiles/tseig.dir/twostage/tile_matrix.cpp.o" "gcc" "src/CMakeFiles/tseig.dir/twostage/tile_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
