# Empty dependencies file for example_solver_cli.
# This may be replaced when dependencies are built.
