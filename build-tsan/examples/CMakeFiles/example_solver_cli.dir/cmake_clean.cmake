file(REMOVE_RECURSE
  "CMakeFiles/example_solver_cli.dir/solver_cli.cpp.o"
  "CMakeFiles/example_solver_cli.dir/solver_cli.cpp.o.d"
  "example_solver_cli"
  "example_solver_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_solver_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
