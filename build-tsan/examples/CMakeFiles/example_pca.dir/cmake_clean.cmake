file(REMOVE_RECURSE
  "CMakeFiles/example_pca.dir/pca.cpp.o"
  "CMakeFiles/example_pca.dir/pca.cpp.o.d"
  "example_pca"
  "example_pca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
