# Empty compiler generated dependencies file for example_pca.
# This may be replaced when dependencies are built.
