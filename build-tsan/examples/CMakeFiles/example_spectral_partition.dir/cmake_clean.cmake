file(REMOVE_RECURSE
  "CMakeFiles/example_spectral_partition.dir/spectral_partition.cpp.o"
  "CMakeFiles/example_spectral_partition.dir/spectral_partition.cpp.o.d"
  "example_spectral_partition"
  "example_spectral_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_spectral_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
