# Empty compiler generated dependencies file for example_spectral_partition.
# This may be replaced when dependencies are built.
