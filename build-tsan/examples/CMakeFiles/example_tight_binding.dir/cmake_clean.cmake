file(REMOVE_RECURSE
  "CMakeFiles/example_tight_binding.dir/tight_binding.cpp.o"
  "CMakeFiles/example_tight_binding.dir/tight_binding.cpp.o.d"
  "example_tight_binding"
  "example_tight_binding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tight_binding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
