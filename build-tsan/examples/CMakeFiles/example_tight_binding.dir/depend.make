# Empty dependencies file for example_tight_binding.
# This may be replaced when dependencies are built.
