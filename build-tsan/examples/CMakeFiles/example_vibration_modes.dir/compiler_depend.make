# Empty compiler generated dependencies file for example_vibration_modes.
# This may be replaced when dependencies are built.
