file(REMOVE_RECURSE
  "CMakeFiles/example_vibration_modes.dir/vibration_modes.cpp.o"
  "CMakeFiles/example_vibration_modes.dir/vibration_modes.cpp.o.d"
  "example_vibration_modes"
  "example_vibration_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vibration_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
